package statsize

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"

	"statsize/internal/cell"
	"statsize/internal/circuitgen"
	"statsize/internal/core"
	"statsize/internal/design"
	"statsize/internal/montecarlo"
	"statsize/internal/netlist"
	"statsize/internal/session"
	"statsize/internal/ssta"
	"statsize/internal/sta"
)

// Engine is the long-lived entry point of the library: it binds a cell
// library and analysis defaults once and then serves any number of
// loading, analysis and optimization requests, concurrently.
//
// Every method is safe for concurrent use. Optimization methods operate
// on a private clone of the design they are given, so one loaded
// netlist can back many simultaneous requests; the sized design comes
// back in Result.Design. All methods that can run long take a
// context.Context and honor cancellation promptly, returning whatever
// partial result exists wrapped around context.Canceled.
//
//	eng, _ := statsize.New(
//		statsize.WithBins(600),
//		statsize.WithObjective(statsize.Percentile(0.99)),
//		statsize.WithParallelism(8),
//	)
//	d, _ := eng.Benchmark("c432")
//	res, _ := eng.Optimize(ctx, d, "accelerated", statsize.MaxIterations(100))
type Engine struct {
	lib         *cell.Library
	bins        int
	binsSet     bool // WithBins was called (0 then means "invalid", not "default")
	objective   Objective
	parallelism int

	// convolveCrossover, when positive, is the default FFT dispatch
	// threshold sessions opened by this engine install (see
	// WithConvolveCrossover); 0 leaves the process auto-calibration
	// in charge.
	convolveCrossover int

	// counters is the engine-wide atomic session rollup behind Stats:
	// every session the engine opens (Open, Optimize, OptimizeSuite)
	// is bound to it and mirrors its activity inline. Atomic, so it
	// sits above the mutex with the immutable configuration and is
	// read lock-free.
	counters session.Counters

	mu    sync.Mutex
	cache map[string]*design.Design // benchmark name -> min-sized base design
}

// Option configures an Engine under construction.
type Option func(*Engine)

// ConfigError reports an Engine option that was given an invalid
// value. New and Open return it (wrapped nowhere — errors.As directly)
// so callers can distinguish a misconfiguration from an environmental
// failure and report which knob to fix.
type ConfigError struct {
	Option string // the option name, e.g. "WithBins"
	Value  any    // the rejected value
	Reason string // why it was rejected
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("statsize: %s(%v): %s", e.Option, e.Value, e.Reason)
}

// WithLibrary selects the cell library for designs the engine builds.
// The default is DefaultLibrary(). The library must not be mutated
// while the engine is in use.
func WithLibrary(lib *Library) Option { return func(e *Engine) { e.lib = lib } }

// WithBins sets the default SSTA grid resolution (bins across the
// estimated circuit delay). The default is 600, the experiments'
// setting. Non-positive values are rejected by New with a ConfigError:
// a zero or negative bin budget has no meaning and historically slipped
// through construction only to panic deep inside Design.SuggestDT.
func WithBins(n int) Option {
	return func(e *Engine) {
		e.bins = n
		e.binsSet = true
	}
}

// WithObjective sets the default optimization objective. The default is
// Percentile(0.99), the paper's.
func WithObjective(o Objective) Option { return func(e *Engine) { e.objective = o } }

// WithParallelism bounds the worker count of every parallel path the
// engine drives: batch APIs such as OptimizeSuite, the level-parallel
// SSTA pass behind Open, Session.WhatIfBatch evaluation, and the
// per-candidate sweeps inside the brute-force and accelerated
// optimizers. The worker count never changes results — all parallel
// evaluation is mutation-free and merges in deterministic order — only
// how fast they arrive. The default is GOMAXPROCS; 1 forces fully
// serial evaluation.
func WithParallelism(n int) Option { return func(e *Engine) { e.parallelism = n } }

// WithConvolveCrossover sets the support width (in bins) at which the
// SSTA convolution kernels switch from the exact direct algorithm to
// the FFT fast path; 1 forces the FFT everywhere, 0 (the default)
// keeps the auto-calibrated threshold, which no session at or below
// the default 600-bin grid can reach. The setting is installed when a
// session opens and is process-wide dispatch policy — the FFT route
// agrees with the direct kernel to ~1e-15 of probability mass per bin,
// so which route runs never changes any documented contract.
func WithConvolveCrossover(n int) Option { return func(e *Engine) { e.convolveCrossover = n } }

// New builds an Engine from functional options.
func New(opts ...Option) (*Engine, error) {
	e := &Engine{cache: make(map[string]*design.Design)}
	for _, opt := range opts {
		opt(e)
	}
	if e.lib == nil {
		e.lib = cell.Default180nm()
	}
	if err := e.lib.Validate(); err != nil {
		return nil, err
	}
	if e.binsSet && e.bins <= 0 {
		return nil, &ConfigError{Option: "WithBins", Value: e.bins, Reason: "bin budget must be positive"}
	}
	if e.bins == 0 {
		e.bins = 600
	}
	if e.objective == nil {
		e.objective = Percentile(0.99)
	}
	if e.parallelism < 0 {
		return nil, &ConfigError{Option: "WithParallelism", Value: e.parallelism, Reason: "worker bound must be non-negative (0 means GOMAXPROCS)"}
	}
	if e.parallelism == 0 {
		e.parallelism = runtime.GOMAXPROCS(0)
	}
	if e.convolveCrossover < 0 {
		return nil, &ConfigError{Option: "WithConvolveCrossover", Value: e.convolveCrossover, Reason: "crossover must be non-negative (0 means auto-calibrated)"}
	}
	return e, nil
}

// defaultEngine backs the package-level convenience functions.
var defaultEngine = sync.OnceValue(func() *Engine {
	e, err := New()
	if err != nil {
		panic("statsize: default engine: " + err.Error())
	}
	return e
})

// Library returns the engine's cell library.
func (e *Engine) Library() *Library { return e.lib }

// Bins returns the engine's default SSTA grid resolution.
func (e *Engine) Bins() int { return e.bins }

// Objective returns the engine's default optimization objective.
func (e *Engine) Objective() Objective { return e.objective }

// Parallelism returns the engine's batch worker bound.
func (e *Engine) Parallelism() int { return e.parallelism }

// Benchmark returns a minimum-sized design for a named benchmark: "c17"
// is the genuine embedded ISCAS'85 netlist; c432..c7552 are structural
// replicas matching the paper's Table 1 node/edge counts exactly. The
// elaborated circuit is built once per engine and cached; callers
// receive independent clones, so designs returned here can be sized and
// analyzed freely without affecting each other.
func (e *Engine) Benchmark(name string) (*Design, error) {
	e.mu.Lock()
	base, ok := e.cache[name]
	e.mu.Unlock()
	if ok {
		return base.Clone(), nil
	}
	base, err := e.buildBenchmark(name)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if cached, ok := e.cache[name]; ok {
		base = cached // another goroutine won the build race; keep one copy
	} else {
		e.cache[name] = base
	}
	e.mu.Unlock()
	return base.Clone(), nil
}

func (e *Engine) buildBenchmark(name string) (*design.Design, error) {
	if name == "c17" {
		return design.New(netlist.C17(e.lib), e.lib)
	}
	sp, ok := circuitgen.ByName(name)
	if !ok {
		return nil, &UnknownCircuitError{Name: name}
	}
	nl, err := circuitgen.Generate(e.lib, sp)
	if err != nil {
		return nil, err
	}
	return design.New(nl, e.lib)
}

// LoadBench parses an ISCAS .bench netlist and returns a minimum-sized
// design over the engine's library.
func (e *Engine) LoadBench(r io.Reader, name string) (*Design, error) {
	nl, err := netlist.ParseBench(r, name, e.lib)
	if err != nil {
		return nil, err
	}
	return design.New(nl, e.lib)
}

// GenerateCircuit builds a design from a custom synthetic circuit spec.
func (e *Engine) GenerateCircuit(sp CircuitSpec) (*Design, error) {
	nl, err := circuitgen.Generate(e.lib, sp)
	if err != nil {
		return nil, err
	}
	return design.New(nl, e.lib)
}

// NewDesign binds an existing netlist to the engine's library at
// minimum widths.
func (e *Engine) NewDesign(nl *Netlist) (*Design, error) {
	return design.New(nl, e.lib)
}

// AnalyzeSTA runs deterministic static timing analysis.
func (e *Engine) AnalyzeSTA(d *Design) *STAResult { return sta.Analyze(d) }

// AnalyzeSSTA runs statistical static timing analysis at the engine's
// grid resolution, level-parallel across the engine's worker bound.
func (e *Engine) AnalyzeSSTA(ctx context.Context, d *Design) (*Analysis, error) {
	return ssta.AnalyzeParallel(ctx, d, d.SuggestDT(e.bins), e.parallelism)
}

// MonteCarlo samples the exact circuit-delay distribution.
func (e *Engine) MonteCarlo(ctx context.Context, d *Design, samples int, seed int64) (*MCResult, error) {
	return montecarlo.Run(ctx, d, samples, seed)
}

// MonteCarloCorrelated samples the circuit delay under spatially
// correlated variation.
func (e *Engine) MonteCarloCorrelated(ctx context.Context, d *Design, samples int, seed int64, m CorrModel) (*MCResult, error) {
	return montecarlo.RunCorrelated(ctx, d, samples, seed, m)
}

// Criticality estimates per-gate critical-path probabilities by Monte
// Carlo (indexed by gate ID).
func (e *Engine) Criticality(ctx context.Context, d *Design, samples int, seed int64) ([]float64, error) {
	return montecarlo.Criticality(ctx, d, samples, seed)
}

// RunOption adjusts the configuration of one optimization run on top of
// the engine's defaults.
type RunOption func(*Config)

// MaxIterations caps the sizing iterations of a run.
func MaxIterations(n int) RunOption { return func(c *Config) { c.MaxIterations = n } }

// MaxAreaIncrease stops a run once the total gate width exceeds the
// initial total by this fraction (0.25 = +25%).
func MaxAreaIncrease(frac float64) RunOption { return func(c *Config) { c.MaxAreaIncrease = frac } }

// MultiSize sizes the top-k gates per iteration instead of one.
func MultiSize(k int) RunOption { return func(c *Config) { c.MultiSize = k } }

// HeuristicLevels stops perturbation fronts after n levels and uses the
// bound as an approximate sensitivity (drops the exactness guarantee).
func HeuristicLevels(n int) RunOption { return func(c *Config) { c.HeuristicLevels = n } }

// ForObjective overrides the engine's objective for one run.
func ForObjective(o Objective) RunOption { return func(c *Config) { c.Objective = o } }

// OnIteration observes each completed sizing iteration of a run.
func OnIteration(fn func(IterRecord)) RunOption { return func(c *Config) { c.OnIteration = fn } }

// WithConfig replaces the run configuration wholesale; later options
// still apply on top, and unset fields still inherit engine defaults.
// It is the bridge for code migrating from the deprecated free
// functions, which took a Config directly.
func WithConfig(cfg Config) RunOption { return func(c *Config) { *c = cfg } }

// buildConfig resolves one run's Config: run options over a zero
// config, then engine defaults for whatever they left unset.
func (e *Engine) buildConfig(opts []RunOption) Config {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.Objective == nil {
		cfg.Objective = e.objective
	}
	if cfg.Bins <= 0 && cfg.DT <= 0 {
		cfg.Bins = e.bins
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = e.parallelism
	}
	if cfg.ConvolveCrossover <= 0 {
		cfg.ConvolveCrossover = e.convolveCrossover
	}
	return cfg
}

// Open starts an incremental timing session on a private clone of d:
// one full SSTA pass at the resolved grid, then every query (sink
// distribution, percentiles, per-gate arrival, statistical slack and
// criticality via the backward required-time pass) and every mutation
// (incremental Resize, uncommitted WhatIf, Checkpoint/Rollback) runs
// against that live analysis. The caller's design is never mutated.
//
// The session is safe for concurrent use — calls serialize on an
// internal lock — and must be Closed when done. Run options resolve the
// grid resolution and objective exactly as Optimize does, so a session
// opened and optimized with the same options sees the same numbers.
func (e *Engine) Open(ctx context.Context, d *Design, opts ...RunOption) (*Session, error) {
	return e.openSession(ctx, d.Clone(), e.buildConfig(opts))
}

// openSession opens a session and binds it to the engine's stats
// rollup; every engine path that opens a session goes through here so
// Stats sees all of them.
func (e *Engine) openSession(ctx context.Context, d *design.Design, cfg Config) (*Session, error) {
	s, err := core.OpenSession(ctx, d, cfg)
	if err != nil {
		return nil, err
	}
	if err := s.BindCounters(&e.counters); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// Optimize sizes a clone of d with the named optimizer (see Optimizers
// for the registry) under the engine's defaults adjusted by run
// options: it opens a session over the clone, runs the strategy against
// it, and closes the session. The caller's design is never mutated; the
// sized clone is Result.Design.
//
// Cancellation via ctx is honored between iterations and between
// candidate evaluations: the partial Result — committed iterations, the
// partially sized clone, the trace — is returned together with an error
// wrapping context.Canceled.
func (e *Engine) Optimize(ctx context.Context, d *Design, optimizer string, opts ...RunOption) (*Result, error) {
	o, err := lookupOptimizer(optimizer)
	if err != nil {
		return nil, err
	}
	cfg := e.buildConfig(opts)
	s, err := e.openSession(ctx, d.Clone(), cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return o.Optimize(ctx, s, cfg)
}

// OptimizeSession runs the named optimizer against a caller-held
// session, so one long-lived session can interleave queries, what-ifs,
// manual resizes, checkpoints and full optimizer runs. The optimizer
// acquires the session exclusively for the duration of the run;
// concurrent session calls block until it returns. Result.Design is the
// session's live design — snapshot it (Session.Snapshot) if the session
// keeps mutating afterwards.
//
// The run uses the analysis grid the session was opened at: grid
// options (WithConfig's Bins or DT) are construction-time parameters
// and are ignored here — pass them to Engine.Open instead. All other
// run options (iterations, area cap, objective, ...) apply normally.
func (e *Engine) OptimizeSession(ctx context.Context, s *Session, optimizer string, opts ...RunOption) (*Result, error) {
	o, err := lookupOptimizer(optimizer)
	if err != nil {
		return nil, err
	}
	return o.Optimize(ctx, s, e.buildConfig(opts))
}

// SuiteResult is one circuit's outcome within OptimizeSuite.
type SuiteResult struct {
	Circuit string
	Result  *Result // nil when Err is set before the run produced anything
	Err     error
}

// OptimizeSuite runs the named optimizer over a batch of benchmark
// circuits (nil means the full Table 1 suite) on a worker pool bounded
// by the engine's parallelism. Results arrive in input order; a
// circuit's failure is recorded in its SuiteResult without aborting the
// rest. The returned error is non-nil only when the context ended the
// batch early — per-circuit errors never abort the suite — and then the
// undone circuits carry the context error in their Err fields.
//
// This is the seed of the service layer the ROADMAP aims at: one engine
// instance, one loaded library, N concurrent sizing workloads.
func (e *Engine) OptimizeSuite(ctx context.Context, circuits []string, optimizer string, opts ...RunOption) ([]SuiteResult, error) {
	if _, err := lookupOptimizer(optimizer); err != nil {
		return nil, err
	}
	if circuits == nil {
		circuits = BenchmarkNames()
	}
	out := make([]SuiteResult, len(circuits))
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := e.parallelism
	if workers > len(circuits) {
		workers = len(circuits)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				name := circuits[i]
				out[i] = SuiteResult{Circuit: name}
				d, err := e.Benchmark(name)
				if err != nil {
					out[i].Err = err
					continue
				}
				res, err := e.Optimize(ctx, d, optimizer, opts...)
				out[i].Result = res
				out[i].Err = err
			}
		}()
	}
	var batchErr error
dispatch:
	for i := range circuits {
		select {
		case jobs <- i:
		case <-ctx.Done():
			batchErr = fmt.Errorf("statsize: suite canceled after dispatching %d of %d circuits: %w",
				i, len(circuits), ctx.Err())
			for j := i; j < len(circuits); j++ {
				out[j] = SuiteResult{Circuit: circuits[j], Err: ctx.Err()}
			}
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	// The context can also die after the last dispatch while runs are
	// still in flight; the batch is truncated either way.
	if batchErr == nil && ctx.Err() != nil {
		batchErr = fmt.Errorf("statsize: suite canceled with runs in flight: %w", ctx.Err())
	}
	return out, batchErr
}

// EngineStats is a point-in-time snapshot of engine-wide accounting:
// every session the engine opened (through Open as well as the private
// sessions backing Optimize and OptimizeSuite runs) reports into it
// live. The delay-cache rollup sums DelayCacheStats over the engine's
// cached benchmark base designs — clones share their base's cache, so
// session traffic on benchmark designs is covered; designs loaded
// through LoadBench/NewDesign carry private caches outside this rollup.
// The JSON tags are a stable wire contract: statsized serves this
// struct verbatim from /stats.
type EngineStats struct {
	SessionsOpened   int64 `json:"sessions_opened"`   // sessions ever opened
	SessionsLive     int64 `json:"sessions_live"`     // opened minus closed
	WhatIfsServed    int64 `json:"whatifs_served"`    // what-if evaluations (single + batch members)
	ResizesCommitted int64 `json:"resizes_committed"` // committed incremental resizes
	Checkpoints      int64 `json:"checkpoints"`       // checkpoints taken
	Rollbacks        int64 `json:"rollbacks"`         // rollbacks applied

	DelayCacheHits    uint64 `json:"delay_cache_hits"`    // memo hits across cached benchmark designs
	DelayCacheMisses  uint64 `json:"delay_cache_misses"`  // memo misses (entries computed)
	DelayCacheFlushes uint64 `json:"delay_cache_flushes"` // wholesale shard flushes
	DelayCacheEntries int    `json:"delay_cache_entries"` // live memo entries
	BenchmarksCached  int    `json:"benchmarks_cached"`   // elaborated benchmark designs held
}

// Stats snapshots the engine-wide accounting. It never takes a session
// lock — sessions mirror their activity into an atomic rollup as it
// happens — so it is safe to poll from a health endpoint while
// long-running optimizer runs hold their sessions.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		SessionsOpened:   e.counters.Opened.Load(),
		SessionsLive:     e.counters.Live(),
		WhatIfsServed:    e.counters.WhatIfs.Load(),
		ResizesCommitted: e.counters.Resizes.Load(),
		Checkpoints:      e.counters.Checkpoints.Load(),
		Rollbacks:        e.counters.Rollbacks.Load(),
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st.BenchmarksCached = len(e.cache)
	for _, d := range e.cache {
		hits, misses, flushes, entries := d.DelayCacheStats()
		st.DelayCacheHits += hits
		st.DelayCacheMisses += misses
		st.DelayCacheFlushes += flushes
		st.DelayCacheEntries += entries
	}
	return st
}
