package statsize_test

import (
	"fmt"
	"strings"

	"statsize"
)

// The whole pipeline is deterministic (seeded generation, fixed grids),
// so these examples assert exact output.

func ExampleBenchmark() {
	d, err := statsize.Benchmark("c17")
	if err != nil {
		panic(err)
	}
	fmt.Println(d.NL)
	// Output: Netlist{c17: 6 gates, 11 nets, 5 PI, 2 PO}
}

func ExampleOptimizeAccelerated() {
	d, err := statsize.Benchmark("c17")
	if err != nil {
		panic(err)
	}
	res, err := statsize.OptimizeAccelerated(d, statsize.Config{MaxIterations: 3})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Iterations, res.FinalObjective < res.InitialObjective)
	// Output: 3 true
}

func ExampleLoadBench() {
	src := "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n"
	d, err := statsize.LoadBench(strings.NewReader(src), "tiny")
	if err != nil {
		panic(err)
	}
	fmt.Println(d.NL.NumGates(), d.NL.NumPIs(), d.NL.NumPOs())
	// Output: 1 2 1
}

func ExamplePathHistogram() {
	d, err := statsize.Benchmark("c17")
	if err != nil {
		panic(err)
	}
	h := statsize.PathHistogram(d, 0.01)
	fmt.Printf("%.0f source-to-sink paths\n", h.NumPaths())
	// Output: 11 source-to-sink paths
}

func ExampleTopPaths() {
	d, err := statsize.Benchmark("c17")
	if err != nil {
		panic(err)
	}
	paths := statsize.TopPaths(d, 2)
	fmt.Println(len(paths), paths[0].Delay >= paths[1].Delay)
	// Output: 2 true
}
