package statsize

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/traces golden files from the current implementation")

// formatTrace renders a Result in the golden trace format: every float
// in hex so the comparison is bit-exact.
func formatTrace(circuit, opt string, res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# golden optimizer trace: %s %s (MaxIterations=10 Bins=400)\n", circuit, opt)
	fmt.Fprintf(&b, "initial %x %x\n", res.InitialObjective, res.InitialWidth)
	for _, r := range res.Records {
		gates := make([]string, len(r.Gates))
		for i, g := range r.Gates {
			gates[i] = fmt.Sprint(g)
		}
		fmt.Fprintf(&b, "iter %d gates=%s sens=%x obj=%x width=%x considered=%d pruned=%d visited=%d\n",
			r.Iter, strings.Join(gates, ","), r.Sensitivity, r.Objective, r.TotalWidth,
			r.CandidatesConsidered, r.CandidatesPruned, r.NodesVisited)
	}
	fmt.Fprintf(&b, "final %x %x\n", res.FinalObjective, res.FinalWidth)
	return b.String()
}

// TestGoldenTraces pins the optimizer trajectories to golden files
// captured from the pre-Session implementation: gate choice per
// iteration, sensitivities, objectives, widths and the candidate /
// pruning / visit counters must be bit-identical for the deterministic,
// brute-force and accelerated strategies on c432, c880 and c1908 (the
// benchmark workhorse of the incremental-timing tests). This is the
// proof that plumbing refactors change the plumbing, not the
// algorithm.
func TestGoldenTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("golden traces cover c880/c1908 brute force; skipped with -short")
	}
	eng, err := New()
	if err != nil {
		t.Fatal(err)
	}
	for _, circuit := range []string{"c432", "c880", "c1908"} {
		for _, opt := range []string{"deterministic", "brute-force", "accelerated"} {
			t.Run(circuit+"/"+opt, func(t *testing.T) {
				d, err := eng.Benchmark(circuit)
				if err != nil {
					t.Fatal(err)
				}
				res, err := eng.Optimize(context.Background(), d, opt,
					WithConfig(Config{MaxIterations: 10, Bins: 400}))
				if err != nil {
					t.Fatal(err)
				}
				got := formatTrace(circuit, opt, res)
				path := filepath.Join("testdata", "traces", fmt.Sprintf("%s_%s.txt", circuit, opt))
				if *updateGolden {
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if got != string(want) {
					gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
					for i := range gotLines {
						if i >= len(wantLines) || gotLines[i] != wantLines[i] {
							t.Fatalf("trace diverges from golden at line %d:\n got  %q\n want %q",
								i+1, gotLines[i], wantLines[min(i, len(wantLines)-1)])
						}
					}
					t.Fatalf("trace diverges from golden (golden has %d lines, got %d)",
						len(wantLines), len(gotLines))
				}
			})
		}
	}
}
