// Command figure10 regenerates the paper's Figure 10: the area-delay
// trade-off curves of deterministic and statistical optimization, each
// point evaluated with both the SSTA bound and Monte Carlo (the paper
// plots c3540).
//
// Usage:
//
//	figure10 [-circuit c3540] [-iters N] [-samples M] [-full] [-csv]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"statsize/internal/experiments"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fs := flag.NewFlagSet("figure10", flag.ExitOnError)
	resolve := experiments.FlagOptions(fs)
	circuit := fs.String("circuit", "c3540", "circuit to trace")
	csv := fs.Bool("csv", false, "emit curve points as CSV")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	res, err := experiments.Figure10(ctx, *circuit, resolve())
	if err != nil {
		fmt.Fprintln(os.Stderr, "figure10:", err)
		os.Exit(1)
	}
	if *csv {
		err = res.CSV(os.Stdout)
	} else {
		err = res.Render(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "figure10:", err)
		os.Exit(1)
	}
}
