// Command validate runs the statistical correctness oracle: a
// randomized corpus of generated circuits (plus optional ISCAS
// replicas) is swept through the full SSTA stack and checked against
// Monte Carlo ground truth under DKW-derived tolerances, alongside the
// metamorphic property suite. Failures print minimized reproducer
// specs that feed straight back into -spec.
//
// Usage:
//
//	validate [-corpus.n N] [-seed S] [-max-gates G] [-samples M]
//	         [-iscas c432,c880|all|none] [-shrink B] [-q]
//	validate -spec 'circuitgen.Spec{Name: "reconv-008", ...}'
//
// Exit status: 0 all checks pass, 1 violations found, 2 usage or
// infrastructure error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"statsize/internal/cell"
	"statsize/internal/circuitgen"
	"statsize/internal/validate"
)

func main() {
	os.Exit(run())
}

func run() int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	opts := validate.DefaultOptions()
	fs.IntVar(&opts.Corpus.N, "corpus.n", 100, "random corpus size")
	fs.Int64Var(&opts.Corpus.Seed, "seed", opts.Corpus.Seed, "corpus master seed")
	fs.IntVar(&opts.Corpus.MaxGates, "max-gates", 200, "per-circuit gate ceiling")
	fs.IntVar(&opts.Oracle.Samples, "samples", opts.Oracle.Samples, "Monte Carlo samples per circuit")
	fs.IntVar(&opts.Oracle.Bins, "bins", opts.Oracle.Bins, "SSTA grid bins")
	fs.Float64Var(&opts.Oracle.Alpha, "alpha", opts.Oracle.Alpha, "DKW band miss probability")
	fs.IntVar(&opts.ShrinkBudget, "shrink", opts.ShrinkBudget, "circuit regenerations per failure minimization (0 disables)")
	iscas := fs.String("iscas", "c432,c880", `ISCAS replicas to include: comma list, "all", or "none"`)
	spec := fs.String("spec", "", "validate a single reproducer spec literal instead of a corpus")
	quiet := fs.Bool("q", false, "suppress per-circuit progress, print only the summary")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}
	switch *iscas {
	case "all":
		opts.ISCAS = circuitgen.Names()
	case "none", "":
		opts.ISCAS = nil
	default:
		opts.ISCAS = strings.Split(*iscas, ",")
	}
	if !*quiet {
		opts.Log = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}

	lib := cell.Default180nm()
	if *spec != "" {
		return runSingle(ctx, lib, *spec, opts)
	}
	sum, err := validate.Run(ctx, lib, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		return 2
	}
	if *quiet {
		fmt.Print(sum.ReportTail())
	} else {
		fmt.Printf("\n%s", sum.ReportTail())
	}
	if !sum.Ok() {
		return 1
	}
	return 0
}

// runSingle re-validates one reproducer spec.
func runSingle(ctx context.Context, lib *cell.Library, literal string, opts validate.Options) int {
	sp, err := circuitgen.ParseSpec(strings.TrimSpace(literal))
	if err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		return 2
	}
	rep, err := validate.RunOracle(ctx, lib, sp, opts.Oracle)
	if err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		return 2
	}
	fmt.Println(rep)
	failed := !rep.Pass
	for _, prop := range validate.Properties() {
		if err := prop.Run(ctx, lib, sp); err != nil {
			fmt.Printf("%-20s FAIL: %v\n", prop.Name, err)
			failed = true
		} else {
			fmt.Printf("%-20s ok\n", prop.Name)
		}
	}
	if failed {
		return 1
	}
	return 0
}
