// Command benchgen writes the ISCAS'85 replica netlists (or a custom
// spec) as .bench files, so the exact circuits behind the experiments
// can be inspected, diffed and consumed by other tools.
//
// Usage:
//
//	benchgen -out ./circuits                 # the whole Table 1 suite
//	benchgen -circuit c3540                  # one replica to stdout
//	benchgen -nodes 500 -edges 900 -pis 40 -pos 25 -depth 20 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"statsize/internal/cell"
	"statsize/internal/circuitgen"
	"statsize/internal/netlist"
)

func main() {
	out := flag.String("out", "", "directory to write <name>.bench files (default: stdout)")
	circuit := flag.String("circuit", "", "single benchmark to emit (default: all)")
	nodes := flag.Int("nodes", 0, "custom spec: timing-graph nodes")
	edges := flag.Int("edges", 0, "custom spec: timing-graph edges")
	pis := flag.Int("pis", 0, "custom spec: primary inputs")
	pos := flag.Int("pos", 0, "custom spec: primary outputs")
	depth := flag.Int("depth", 0, "custom spec: logic depth")
	seed := flag.Int64("seed", 1, "custom spec: generator seed")
	flag.Parse()

	if err := run(*out, *circuit, *nodes, *edges, *pis, *pos, *depth, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run(out, circuit string, nodes, edges, pis, pos, depth int, seed int64) error {
	lib := cell.Default180nm()
	var specs []circuitgen.Spec
	switch {
	case nodes > 0:
		specs = []circuitgen.Spec{{
			Name:  fmt.Sprintf("custom_n%d_e%d", nodes, edges),
			Nodes: nodes, Edges: edges, PIs: pis, POs: pos, Depth: depth, Seed: seed,
		}}
	case circuit != "":
		sp, ok := circuitgen.ByName(circuit)
		if !ok {
			return fmt.Errorf("unknown circuit %q", circuit)
		}
		specs = []circuitgen.Spec{sp}
	default:
		specs = circuitgen.ISCAS85
	}
	for _, sp := range specs {
		nl, err := circuitgen.Generate(lib, sp)
		if err != nil {
			return err
		}
		if err := emit(out, nl); err != nil {
			return err
		}
	}
	return nil
}

func emit(dir string, nl *netlist.Netlist) error {
	if dir == "" {
		return nl.WriteBench(os.Stdout)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, nl.Name+".bench")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := nl.WriteBench(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d gates)\n", path, nl.NumGates())
	return nil
}
