// Command table1 regenerates the paper's Table 1: 99-percentile circuit
// delay after deterministic versus statistical gate sizing at equal
// added area, over the ISCAS'85 replica suite.
//
// Usage:
//
//	table1 [-circuits c432,c880] [-iters N] [-bins B] [-full] [-csv]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"statsize/internal/experiments"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	resolve := experiments.FlagOptions(fs)
	csv := fs.Bool("csv", false, "emit CSV instead of the formatted table")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	rows, err := experiments.Table1(ctx, resolve())
	if err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
	if *csv {
		err = experiments.Table1CSV(os.Stdout, rows)
	} else {
		err = experiments.RenderTable1(os.Stdout, rows)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
}
