// Command timingreport prints a full timing report for one circuit:
// deterministic critical paths, statistical percentiles from three
// engines (discretized SSTA, Gaussian moment propagation, Monte Carlo),
// per-gate criticalities from both Monte Carlo sampling and the
// session's backward required-time pass (statistical slack), and the
// effect of spatial correlation that the paper's bound does not model.
//
// Usage:
//
//	timingreport -circuit c432 [-paths 10] [-samples 8000] [-corr 0.5]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"

	"statsize"
	"statsize/internal/netlist"
	"statsize/internal/report"
)

func main() {
	circuit := flag.String("circuit", "c432", "benchmark name")
	bench := flag.String("bench", "", "path to a .bench netlist (alternative to -circuit)")
	paths := flag.Int("paths", 10, "critical paths to list")
	samples := flag.Int("samples", 8000, "Monte Carlo samples")
	bins := flag.Int("bins", 600, "SSTA grid bins")
	corr := flag.Float64("corr", 0.5, "correlated variance fraction for the spatial-correlation study (0 disables)")
	topCrit := flag.Int("crit", 10, "most critical gates to list")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, *circuit, *bench, *paths, *samples, *bins, *corr, *topCrit); err != nil {
		fmt.Fprintln(os.Stderr, "timingreport:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, circuit, bench string, paths, samples, bins int, corr float64, topCrit int) error {
	eng, err := statsize.New(statsize.WithBins(bins))
	if err != nil {
		return err
	}
	var d *statsize.Design
	if bench != "" {
		f, err2 := os.Open(bench)
		if err2 != nil {
			return err2
		}
		defer f.Close()
		d, err = eng.LoadBench(f, bench)
	} else {
		d, err = eng.Benchmark(circuit)
	}
	if err != nil {
		return err
	}
	fmt.Println(d.NL)

	det := eng.AnalyzeSTA(d)
	fmt.Printf("\nnominal circuit delay: %.4f ns\n", det.CircuitDelay())

	// Three statistical views of the same circuit. The discretized SSTA
	// numbers come from an incremental timing session: its one full pass
	// also backs the statistical-slack table further down.
	s, err := eng.Open(ctx, d)
	if err != nil {
		return err
	}
	defer s.Close()
	sink, err := s.SinkDist()
	if err != nil {
		return err
	}
	ga := statsize.AnalyzeGaussian(d)
	mc, err := eng.MonteCarlo(ctx, d, samples, 1)
	if err != nil {
		return err
	}
	t := report.NewTable("\nstatistical circuit delay (ns)",
		"engine", "mean", "p50", "p99")
	t.AddRowStrings("discretized SSTA (paper)",
		fmt.Sprintf("%.4f", sink.Mean()),
		fmt.Sprintf("%.4f", sink.Percentile(0.5)),
		fmt.Sprintf("%.4f", sink.Percentile(0.99)))
	t.AddRowStrings("Gaussian moments (related work)",
		fmt.Sprintf("%.4f", ga.Sink().Mean),
		fmt.Sprintf("%.4f", ga.Percentile(0.5)),
		fmt.Sprintf("%.4f", ga.Percentile(0.99)))
	t.AddRowStrings(fmt.Sprintf("Monte Carlo (%d samples)", samples),
		fmt.Sprintf("%.4f", mc.Mean()),
		fmt.Sprintf("%.4f", mc.Percentile(0.5)),
		fmt.Sprintf("%.4f", mc.Percentile(0.99)))
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	// Top nominal paths.
	pt := report.NewTable(fmt.Sprintf("\ntop %d nominal paths", paths),
		"rank", "delay (ns)", "gates")
	for i, p := range statsize.TopPaths(d, paths) {
		names := ""
		//lint:allow statlint/ctxflow formatting a handful of already-computed paths, bounded by the -paths flag, not a propagation loop
		for _, eid := range p.Edges {
			gid := d.E.EdgeGate[eid]
			if gid == netlist.NoGate {
				continue
			}
			g := d.NL.Gate(gid)
			names += fmt.Sprintf("%s:%s ", g.Kind, d.NL.NetName(g.Out))
		}
		if len(names) > 70 {
			names = names[:67] + "..."
		}
		pt.AddRowStrings(fmt.Sprint(i+1), fmt.Sprintf("%.4f", p.Delay), names)
	}
	if err := pt.Render(os.Stdout); err != nil {
		return err
	}

	// Statistical criticality.
	crit, err := eng.Criticality(ctx, d, samples, 2)
	if err != nil {
		return err
	}
	type gc struct {
		gate int
		c    float64
	}
	var ranked []gc
	for g, c := range crit {
		if c > 0 {
			ranked = append(ranked, gc{g, c})
		}
	}
	for i := 0; i < len(ranked); i++ {
		for j := i + 1; j < len(ranked); j++ {
			if ranked[j].c > ranked[i].c || (ranked[j].c == ranked[i].c && ranked[j].gate < ranked[i].gate) {
				ranked[i], ranked[j] = ranked[j], ranked[i]
			}
		}
	}
	if len(ranked) > topCrit {
		ranked = ranked[:topCrit]
	}
	ct := report.NewTable(fmt.Sprintf("\ntop %d statistically critical gates", topCrit),
		"gate", "cell", "output net", "criticality")
	for _, r := range ranked {
		g := d.NL.Gate(netlist.GateID(r.gate))
		ct.AddRowStrings(fmt.Sprint(r.gate), g.Kind.String(), d.NL.NetName(g.Out),
			fmt.Sprintf("%.3f", r.c))
	}
	if err := ct.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("gates with nonzero criticality: %d of %d (why the paper computes sensitivities for all gates)\n",
		len(crit)-countZero(crit), len(crit))

	// The same ranking without sampling: statistical slack from the
	// session's backward required-time pass, measured against the mean
	// circuit delay. P(slack<=0) near 0.5 marks the statistically
	// critical paths.
	if err := s.SetDeadline(sink.Mean()); err != nil {
		return err
	}
	numGates, err := s.NumGates()
	if err != nil {
		return err
	}
	var sranked []gc
	for g := 0; g < numGates; g++ {
		c, err := s.Criticality(ctx, netlist.GateID(g))
		if err != nil {
			return err
		}
		if c > 0 {
			sranked = append(sranked, gc{g, c})
		}
	}
	sort.Slice(sranked, func(i, j int) bool {
		if sranked[i].c != sranked[j].c {
			return sranked[i].c > sranked[j].c
		}
		return sranked[i].gate < sranked[j].gate
	})
	if len(sranked) > topCrit {
		sranked = sranked[:topCrit]
	}
	st := report.NewTable(fmt.Sprintf("\ntop %d gates by statistical slack (no sampling; deadline = mean delay)", topCrit),
		"gate", "cell", "output net", "P(slack<=0)", "mean slack (ns)")
	for _, r := range sranked {
		g := d.NL.Gate(netlist.GateID(r.gate))
		sl, err := s.Slack(ctx, netlist.GateID(r.gate))
		if err != nil {
			return err
		}
		st.AddRowStrings(fmt.Sprint(r.gate), g.Kind.String(), d.NL.NetName(g.Out),
			fmt.Sprintf("%.3f", r.c), fmt.Sprintf("%.4f", sl.Mean()))
	}
	if err := st.Render(os.Stdout); err != nil {
		return err
	}

	// Spatial correlation study.
	if corr > 0 {
		cm := statsize.CorrModel{GlobalFrac: corr * 0.6, RegionFrac: corr * 0.4}
		cmc, err := eng.MonteCarloCorrelated(ctx, d, samples, 3, cm)
		if err != nil {
			return err
		}
		fmt.Printf("\nspatial correlation study (%.0f%% shared variance):\n", corr*100)
		fmt.Printf("  independent MC p99: %.4f ns | correlated MC p99: %.4f ns | SSTA bound: %.4f ns\n",
			mc.Percentile(0.99), cmc.Percentile(0.99), sink.Percentile(0.99))
		fmt.Printf("  correlation widens the tail by %.2f%%; the paper's bound does not model this (Section 2)\n",
			100*(cmc.Percentile(0.99)-mc.Percentile(0.99))/mc.Percentile(0.99))
	}
	return nil
}

func countZero(xs []float64) int {
	n := 0
	for _, x := range xs {
		if x == 0 {
			n++
		}
	}
	return n
}
