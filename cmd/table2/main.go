// Command table2 regenerates the paper's Table 2: per-iteration runtime
// of the brute-force statistical optimizer versus the accelerated
// pruning algorithm, with improvement factors and pruning rates.
//
// Usage:
//
//	table2 [-circuits c432,c880] [-timed-iters N] [-bins B] [-full] [-csv]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"statsize/internal/experiments"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	resolve := experiments.FlagOptions(fs)
	csv := fs.Bool("csv", false, "emit CSV instead of the formatted table")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	rows, err := experiments.Table2(ctx, resolve())
	if err != nil {
		fmt.Fprintln(os.Stderr, "table2:", err)
		os.Exit(1)
	}
	if *csv {
		err = experiments.Table2CSV(os.Stdout, rows)
	} else {
		err = experiments.RenderTable2(os.Stdout, rows)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "table2:", err)
		os.Exit(1)
	}
}
