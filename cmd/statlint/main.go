// Command statlint is the repository's invariant gate: it runs the
// custom analyzer suite in internal/analyzers — scratchescape,
// arenashare, lockdiscipline, ctxflow — over the given packages, plus
// the standard go vet passes, and exits non-zero on any finding.
//
// Usage:
//
//	go run ./cmd/statlint ./...
//
// Every diagnostic is either a bug to fix or an intentional exception
// to mark with
//
//	//lint:allow statlint/<analyzer> <reason>
//
// on the flagged line or the line directly above. Suppressions are
// validated: an unknown analyzer name or a missing reason fails the
// run (exit 2) rather than silently disabling a check. Findings exit
// 1; a clean tree exits 0.
//
// Flags:
//
//	-vet=false   skip the go vet step (the custom analyzers still run)
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"statsize/internal/analyzers"
	"statsize/internal/analyzers/analysis"
)

func main() {
	vet := flag.Bool("vet", true, "also run `go vet` over the same packages")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: statlint [flags] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nAnalyzers:\n")
		for _, a := range analyzers.All() {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(flag.CommandLine.Output(), "  %-15s %s\n", a.Name, doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nSuppress an intentional finding with //lint:allow statlint/<analyzer> <reason>\non the flagged line or the line directly above.\n")
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	suite := analyzers.All()
	pkgs, err := analysis.NewLoader("").Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statlint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}

	vetFailed := false
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			vetFailed = true
		}
	}

	if len(diags) > 0 || vetFailed {
		os.Exit(1)
	}
}
