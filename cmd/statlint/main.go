// Command statlint is the repository's invariant gate: it runs the
// custom analyzer suite in internal/analyzers — scratchescape,
// arenashare, lockdiscipline, ctxflow, leaseguard, boundeddecode,
// ssedone, counterpath — over the given packages, plus the standard
// go vet passes, and exits non-zero on any finding.
//
// Usage:
//
//	go run ./cmd/statlint ./...
//
// Every diagnostic is either a bug to fix or an intentional exception
// to mark with
//
//	//lint:allow statlint/<analyzer> <reason>
//
// on the flagged line or the line directly above. Suppressions are
// validated: an unknown analyzer name or a missing reason fails the
// run (exit 2) rather than silently disabling a check, and a
// suppression that no longer covers any finding is itself reported as
// a statlint/suppressaudit finding (exit 1) so the waiver list only
// shrinks. Findings exit 1; a clean tree exits 0.
//
// Flags:
//
//	-vet=false    skip the go vet step (the custom analyzers still run)
//	-fix          apply suggested fixes, then re-run the suite to verify;
//	              the exit code describes the tree after fixing
//	-json <path>  also write findings as JSON (see internal/analyzers/driver.Report)
//	              for CI annotation and artifact upload
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"statsize/internal/analyzers"
	"statsize/internal/analyzers/driver"
)

func main() {
	vet := flag.Bool("vet", true, "also run `go vet` over the same packages")
	fix := flag.Bool("fix", false, "apply suggested fixes, then re-run the analyzers to verify")
	jsonPath := flag.String("json", "", "write machine-readable findings to this `path`")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: statlint [flags] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nAnalyzers:\n")
		for _, a := range analyzers.All() {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(flag.CommandLine.Output(), "  %-15s %s\n", a.Name, doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nSuppress an intentional finding with //lint:allow statlint/<analyzer> <reason>\non the flagged line or the line directly above. Stale suppressions are\nthemselves findings (statlint/suppressaudit) and cannot be waived.\n")
	}
	flag.Parse()

	os.Exit(driver.Run(driver.Options{
		Patterns: flag.Args(),
		Fix:      *fix,
		JSONPath: *jsonPath,
		Vet:      *vet,
		Stdout:   os.Stdout,
		Stderr:   os.Stderr,
	}))
}
