// Command figure1 regenerates the paper's Figure 1: after equal-area
// optimization, the deterministic baseline piles paths into a "wall"
// just below the critical delay while the statistical optimizer keeps
// the path profile unbalanced — and wins on statistical circuit delay.
//
// Usage:
//
//	figure1 [-circuit c432] [-iters N] [-full]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"statsize/internal/experiments"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fs := flag.NewFlagSet("figure1", flag.ExitOnError)
	resolve := experiments.FlagOptions(fs)
	circuit := fs.String("circuit", "c432", "circuit to profile")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	res, err := experiments.Figure1(ctx, *circuit, resolve())
	if err != nil {
		fmt.Fprintln(os.Stderr, "figure1:", err)
		os.Exit(1)
	}
	if err := res.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "figure1:", err)
		os.Exit(1)
	}
}
