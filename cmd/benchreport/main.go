// Command benchreport runs the benchmark smoke set and emits a
// machine-readable JSON perf report (name → ns/op, B/op, allocs/op,
// plus any custom metrics) — the per-PR perf trajectory CI archives as
// an artifact.
//
//	go run ./cmd/benchreport                             # BENCH_PR10.json, 1 iteration each
//	go run ./cmd/benchreport -benchtime 100x -out p.json # steadier numbers
//	go run ./cmd/benchreport -bench 'BenchmarkDistKernels' -pkgs ./internal/dist
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// smokeSet is the default benchmark selection: the dist kernels plus
// the end-to-end passes whose allocs/op the PR acceptance criteria pin.
const smokeSet = "BenchmarkDistKernels|BenchmarkPercentile|BenchmarkAnalyzeParallel|BenchmarkWhatIfBatch|BenchmarkSessionResize|BenchmarkFullReanalyze"

// Result is one benchmark's measurements. NsPerOp/BytesPerOp/AllocsPerOp
// are the standard triple; Metrics carries everything else the
// benchmark reported (candidates/op, nodes/resize, …).
type Result struct {
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	GoVersion string            `json:"go_version"`
	GOOS      string            `json:"goos"`
	GOARCH    string            `json:"goarch"`
	Benchtime string            `json:"benchtime"`
	Pattern   string            `json:"pattern"`
	Results   map[string]Result `json:"results"`
}

// benchLine matches one `go test -bench` result line: a benchmark name,
// an iteration count, then value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// gomaxprocsSuffix is the trailing -N go test appends to benchmark
// names; stripped so reports from machines with different core counts
// key identically.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("out", "BENCH_PR10.json", "output JSON path")
	bench := flag.String("bench", smokeSet, "benchmark selection regexp (go test -bench)")
	pkgs := flag.String("pkgs", "./...", "package pattern to benchmark")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchtime", *benchtime, "-benchmem"}
	args = append(args, strings.Fields(*pkgs)...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	rep := Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Benchtime: *benchtime,
		Pattern:   *bench,
		Results:   map[string]Result{},
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		iters, _ := strconv.Atoi(m[2])
		r := Result{Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				r.Metrics[unit] = v
			}
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		rep.Results[name] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: scanning output: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintf(os.Stderr, "benchreport: no benchmark results matched %q\n", *bench)
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}

	names := make([]string, 0, len(rep.Results))
	for n := range rep.Results {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("benchreport: wrote %d results to %s\n", len(names), *out)
	for _, n := range names {
		r := rep.Results[n]
		fmt.Printf("  %-60s %14.1f ns/op %12.0f B/op %8.0f allocs/op\n", n, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
}
