//go:build !faultinject

package main

import "net/http"

// Fault injection is compiled out of the default build: no flag, no
// plan parsing, no middleware. Build with -tags faultinject to enable
// -fault-plan.
func registerFaultFlags() {}

func faultMiddleware() (func(http.Handler) http.Handler, error) { return nil, nil }
