// Command statsized is the timing-as-a-service daemon: a long-running
// HTTP/JSON server exposing the statsize Engine — session open/attach,
// analyze, what-if (single and batch), incremental resize, checkpoint/
// rollback, and streamed optimizer runs — over pooled incremental
// Sessions with lease-based eviction.
//
// Quickstart:
//
//	statsized -addr :8790 &
//	curl -s -X POST localhost:8790/v1/sessions -d '{"design":"c1908"}'
//	curl -s localhost:8790/stats
//
// The daemon drains gracefully on SIGTERM/SIGINT: optimizer streams are
// canceled (each emits its terminal done event), in-flight what-if
// batches finish, pooled sessions close, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"statsize"
	"statsize/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8790", "listen address (use 127.0.0.1:0 for an ephemeral port)")
		maxSessions  = flag.Int("max-sessions", 64, "live session cap; LRU unleased sessions are evicted beyond it")
		idleTimeout  = flag.Duration("idle-timeout", 5*time.Minute, "evict sessions unleased for this long (<0 disables)")
		sweepEvery   = flag.Duration("sweep-every", 15*time.Second, "eviction sweep period")
		maxBody      = flag.Int64("max-body-bytes", server.DefaultMaxBodyBytes, "request body cap in bytes")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown drain budget")
		parallelism  = flag.Int("parallelism", 0, "engine worker parallelism (0 = GOMAXPROCS)")
		bins         = flag.Int("bins", 0, "default SSTA grid bins (0 = engine default; per-session override via the API)")
		readyFile    = flag.String("ready-file", "", "write the bound address to this file once listening (for harnesses)")

		noAdmission = flag.Bool("no-admission", false, "disable admission control (accept everything; overload becomes latency)")
		querySlots  = flag.Int("query-slots", 0, "concurrent query-class requests (what-if/resize/checkpoint; 0 = default 64)")
		heavySlots  = flag.Int("heavy-slots", 0, "concurrent heavy-class requests (open/analyze/optimize; 0 = default 8)")
		queryQueue  = flag.Int("query-queue", 0, "query-class admission queue depth (0 = default 256)")
		heavyQueue  = flag.Int("heavy-queue", 0, "heavy-class admission queue depth (0 = default 16)")
		queueWait   = flag.Duration("queue-wait", 0, "max time an over-capacity request waits before 429 (0 = default 500ms)")
		maxDeadline = flag.Duration("max-deadline", 0, "ceiling on per-request X-Deadline-Ms budgets (0 = default 2m, <0 disables)")
		runLinger   = flag.Duration("run-linger", 0, "grace before a subscriber-less optimize run is canceled (0 = default 10s)")
	)
	registerFaultFlags()
	flag.Parse()
	log.SetPrefix("statsized: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	var opts []statsize.Option
	if *parallelism > 0 {
		opts = append(opts, statsize.WithParallelism(*parallelism))
	}
	if *bins > 0 {
		opts = append(opts, statsize.WithBins(*bins))
	}
	eng, err := statsize.New(opts...)
	if err != nil {
		log.Fatalf("engine: %v", err)
	}

	mw, err := faultMiddleware()
	if err != nil {
		log.Fatalf("fault plan: %v", err)
	}
	srv := server.New(eng, server.Config{
		Addr:             *addr,
		MaxSessions:      *maxSessions,
		IdleTimeout:      *idleTimeout,
		SweepEvery:       *sweepEvery,
		MaxBodyBytes:     *maxBody,
		DrainTimeout:     *drainTimeout,
		DisableAdmission: *noAdmission,
		QuerySlots:       *querySlots,
		HeavySlots:       *heavySlots,
		QueryQueue:       *queryQueue,
		HeavyQueue:       *heavyQueue,
		QueueWait:        *queueWait,
		MaxDeadline:      *maxDeadline,
		RunLinger:        *runLinger,
		Middleware:       mw,
	})

	served := make(chan error, 1)
	go func() {
		served <- srv.ListenAndServe(func(a net.Addr) {
			log.Printf("listening on %s (max-sessions=%d idle-timeout=%s)", a, *maxSessions, *idleTimeout)
			if *readyFile != "" {
				if err := os.WriteFile(*readyFile, []byte(a.String()+"\n"), 0o644); err != nil {
					log.Printf("ready-file: %v", err)
				}
			}
		})
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)

	select {
	case err := <-served:
		// Listener failure before any signal: a fatal boot error.
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
		return
	case got := <-sig:
		log.Printf("caught %s; draining (budget %s)", got, *drainTimeout)
	}

	// One more signal force-quits without waiting for the drain.
	done := make(chan struct{})
	go func() {
		select {
		case got := <-sig:
			log.Printf("caught second %s; exiting immediately", got)
			os.Exit(1)
		case <-done:
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout+5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	if err := <-served; err != nil {
		log.Printf("serve: %v", err)
		os.Exit(1)
	}
	close(done)
	st := srv.Manager().Stats()
	fmt.Fprintf(os.Stderr, "statsized: clean shutdown (sessions opened=%d evicted_idle=%d evicted_cap=%d)\n",
		st.Opened, st.EvictedIdle, st.EvictedCap)
}
