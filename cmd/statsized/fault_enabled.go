//go:build faultinject

package main

import (
	"flag"
	"log"
	"net/http"
	"os"

	"statsize/internal/faultinject"
)

// Built with -tags faultinject, the daemon accepts a declarative fault
// plan and injects its faults (latency, 5xx, connection resets, SSE
// truncation) into every non-exempt request. Chaos harnesses drive a
// daemon built this way; the default build has none of this code.
var faultPlanPath string

func registerFaultFlags() {
	flag.StringVar(&faultPlanPath, "fault-plan", "",
		"JSON fault plan (see internal/faultinject); empty injects nothing")
}

func faultMiddleware() (func(http.Handler) http.Handler, error) {
	if faultPlanPath == "" {
		return nil, nil
	}
	raw, err := os.ReadFile(faultPlanPath)
	if err != nil {
		return nil, err
	}
	plan, err := faultinject.ParsePlan(raw)
	if err != nil {
		return nil, err
	}
	log.Printf("FAULT INJECTION ACTIVE: plan %s (seed %d)", faultPlanPath, plan.Seed)
	return plan.Middleware, nil
}
