// Command sstacheck verifies the Section 4 accuracy claim: the SSTA
// arrival-time bound (reconvergence correlations ignored) stays within
// about 1% of the Monte Carlo 99-percentile on every benchmark.
//
// Usage:
//
//	sstacheck [-circuits c432,c880] [-samples M] [-bins B] [-full]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"statsize/internal/experiments"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fs := flag.NewFlagSet("sstacheck", flag.ExitOnError)
	resolve := experiments.FlagOptions(fs)
	corr := fs.Bool("corr", false, "also sweep spatially correlated variation against the bound")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	opts := resolve()
	rows, err := experiments.BoundsVsMC(ctx, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sstacheck:", err)
		os.Exit(1)
	}
	if err := experiments.RenderBounds(os.Stdout, rows); err != nil {
		fmt.Fprintln(os.Stderr, "sstacheck:", err)
		os.Exit(1)
	}
	if *corr {
		crows, err := experiments.CorrelationStudy(ctx, opts, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sstacheck:", err)
			os.Exit(1)
		}
		fmt.Println()
		if err := experiments.RenderCorrelation(os.Stdout, crows); err != nil {
			fmt.Fprintln(os.Stderr, "sstacheck:", err)
			os.Exit(1)
		}
	}
}
