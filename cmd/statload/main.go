// Command statload is the load benchmark for statsized. It has two
// modes, both built on the resilient statsize/client (retries disabled
// — the generator measures the daemon, not the client's persistence):
//
// Sweep mode (default) drives concurrent what-if batches over a sweep
// of concurrency levels and reports QPS and latency quantiles per
// level (the committed BENCH_PR7.json):
//
//	statsized -addr 127.0.0.1:8790 &
//	statload -url http://127.0.0.1:8790 -design c1908 \
//	    -levels 16,64,256,1024 -duration 8s -out BENCH_PR7.json
//
// Overload mode (-overload) offers a multiple of the daemon's
// query-class saturation point and measures what the admission
// controller does with the excess: goodput, shed rate, and the latency
// split between served and shed requests (the committed
// BENCH_PR9.json, one run against a default daemon and one against
// -no-admission):
//
//	statload -url http://127.0.0.1:8790 -overload -saturation 2 \
//	    -deadline-ms 1000 -duration 8s -out overload.json
//
// Each worker loops requests against one of a small set of pooled
// sessions (distinct client ids), so the run exercises exactly the
// multiplexing path the service layer exists for: many concurrent
// clients over few live analyses.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"statsize/client"
)

// levelReport is one sweep concurrency level's outcome.
type levelReport struct {
	Concurrency int     `json:"concurrency"`
	DurationS   float64 `json:"duration_s"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	QPS         float64 `json:"qps"`
	CandPerSec  float64 `json:"candidates_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
}

// report is the sweep-mode benchmark artifact.
type report struct {
	Tool       string        `json:"tool"`
	URL        string        `json:"url"`
	Design     string        `json:"design"`
	NumGates   int           `json:"num_gates"`
	Bins       int           `json:"bins"`
	Batch      int           `json:"batch"`
	Sessions   int           `json:"sessions"`
	GoMaxProcs int           `json:"go_max_procs"`
	Levels     []levelReport `json:"levels"`
}

// overloadReport is the overload-mode artifact: one offered-load level
// far past saturation, with the served/shed split that admission
// control exists to create.
type overloadReport struct {
	Tool             string  `json:"tool"`
	Mode             string  `json:"mode"`
	URL              string  `json:"url"`
	Design           string  `json:"design"`
	NumGates         int     `json:"num_gates"`
	Bins             int     `json:"bins"`
	Batch            int     `json:"batch"`
	Sessions         int     `json:"sessions"`
	GoMaxProcs       int     `json:"go_max_procs"`
	AdmissionEnabled bool    `json:"admission_enabled"`
	QuerySlots       int     `json:"query_slots,omitempty"`
	Saturation       float64 `json:"saturation"`
	Concurrency      int     `json:"concurrency"`
	DeadlineMs       int     `json:"deadline_ms"`
	DurationS        float64 `json:"duration_s"`

	Requests        int     `json:"requests"`
	Served          int     `json:"served"`
	Shed            int     `json:"shed"`
	DeadlineExpired int     `json:"deadline_expired"`
	Errors          int     `json:"errors"`
	GoodputQPS      float64 `json:"goodput_qps"`
	ShedRate        float64 `json:"shed_rate"`

	ServedP50Ms float64 `json:"served_p50_ms"`
	ServedP95Ms float64 `json:"served_p95_ms"`
	ServedP99Ms float64 `json:"served_p99_ms"`
	ShedP50Ms   float64 `json:"shed_p50_ms"`
	ShedP99Ms   float64 `json:"shed_p99_ms"`
}

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:8790", "daemon base URL")
		design   = flag.String("design", "c1908", "benchmark circuit to load")
		bins     = flag.Int("bins", 400, "SSTA grid bins for the pooled sessions")
		sessions = flag.Int("sessions", 8, "pooled sessions (distinct client ids) to multiplex over")
		batch    = flag.Int("batch", 8, "candidates per what-if request")
		levels   = flag.String("levels", "16,64,256,1024", "comma-separated concurrency sweep (sweep mode)")
		duration = flag.Duration("duration", 8*time.Second, "wall-clock budget per level / overload run")
		seed     = flag.Int64("seed", 1, "candidate-generator seed")
		out      = flag.String("out", "", "write the JSON report here (default stdout)")

		overload   = flag.Bool("overload", false, "overload mode: offer -saturation times the query-class capacity and measure goodput vs shed")
		saturation = flag.Float64("saturation", 2.0, "offered-load multiple of the daemon's query capacity (slots+queue)")
		conc       = flag.Int("conc", 0, "overload worker count (0 = derive from /healthz admission capacity)")
		deadlineMs = flag.Int("deadline-ms", 1000, "per-request deadline in overload mode (0 = none)")
	)
	flag.Parse()
	log.SetPrefix("statload: ")
	log.SetFlags(0)

	maxConc := 0
	sweep, err := parseLevels(*levels)
	if err != nil {
		log.Fatal(err)
	}
	maxConc = sweep[len(sweep)-1]
	if *overload && *conc > maxConc {
		maxConc = *conc
	}

	// One shared transport sized generously, so connections are reused
	// instead of churning through TIME_WAIT. Retries are disabled: a
	// shed must be recorded as a shed, not quietly absorbed.
	cl, err := client.New(client.Config{
		BaseURL: *url,
		Transport: &http.Transport{
			MaxIdleConns:        maxConc + 700,
			MaxIdleConnsPerHost: maxConc + 700,
		},
		MaxRetries:     -1,
		AttemptTimeout: 5 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}

	ids, numGates, err := openSessions(cl, *design, *bins, *sessions)
	if err != nil {
		log.Fatalf("opening sessions: %v", err)
	}
	log.Printf("pool ready: %d sessions on %s (%d gates)", len(ids), *design, numGates)

	var artifact any
	if *overload {
		artifact = runOverload(cl, overloadParams{
			url: *url, design: *design, bins: *bins, batch: *batch,
			ids: ids, numGates: numGates,
			saturation: *saturation, conc: *conc, deadlineMs: *deadlineMs,
			duration: *duration, seed: *seed,
		})
	} else {
		rep := &report{
			Tool:       "statload",
			URL:        *url,
			Design:     *design,
			NumGates:   numGates,
			Bins:       *bins,
			Batch:      *batch,
			Sessions:   *sessions,
			GoMaxProcs: runtime.GOMAXPROCS(0),
		}
		for _, c := range sweep {
			lvl := runLevel(cl, ids, numGates, *batch, c, *duration, *seed)
			rep.Levels = append(rep.Levels, lvl)
			log.Printf("concurrency %4d: %6.1f qps  p50 %8.2fms  p99 %9.2fms  errors %d",
				lvl.Concurrency, lvl.QPS, lvl.P50Ms, lvl.P99Ms, lvl.Errors)
		}
		artifact = rep
	}

	enc, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}

// parseLevels parses the ascending concurrency sweep.
func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad concurrency level %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty level sweep")
	}
	sort.Ints(out)
	return out, nil
}

// openSessions creates the pooled sessions the workers multiplex over.
func openSessions(cl *client.Client, design string, bins, n int) ([]string, int, error) {
	ids := make([]string, n)
	numGates := 0
	for i := range ids {
		resp, err := cl.Open(context.Background(), &client.OpenSessionRequest{
			Design: design, Client: fmt.Sprintf("load-%d", i), Bins: bins,
		})
		if err != nil {
			return nil, 0, fmt.Errorf("session %d: %w", i, err)
		}
		ids[i] = resp.SessionID
		numGates = resp.NumGates
	}
	return ids, numGates, nil
}

// percentile reads the p-quantile off sorted millisecond samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(p*float64(len(sorted)-1))]
}

// runLevel drives conc workers for the duration and aggregates their
// latency samples (sweep mode).
func runLevel(cl *client.Client, ids []string, numGates, batch, conc int, d time.Duration, seed int64) levelReport {
	type sample struct {
		lat time.Duration
		err bool
	}
	perWorker := make([][]sample, conc)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			id := ids[w%len(ids)]
			var samples []sample
			for {
				select {
				case <-stop:
					perWorker[w] = samples
					return
				default:
				}
				t0 := time.Now()
				_, err := cl.WhatIf(context.Background(), id, randomBatch(rng, numGates, batch))
				samples = append(samples, sample{lat: time.Since(t0), err: err != nil})
			}
		}(w)
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	var lats []float64
	requests, errCount := 0, 0
	for _, ws := range perWorker {
		for _, s := range ws {
			requests++
			if s.err {
				errCount++
				continue
			}
			lats = append(lats, float64(s.lat)/float64(time.Millisecond))
		}
	}
	sort.Float64s(lats)
	maxMs := 0.0
	if len(lats) > 0 {
		maxMs = lats[len(lats)-1]
	}
	ok := requests - errCount
	return levelReport{
		Concurrency: conc,
		DurationS:   elapsed.Seconds(),
		Requests:    requests,
		Errors:      errCount,
		QPS:         float64(ok) / elapsed.Seconds(),
		CandPerSec:  float64(ok*batch) / elapsed.Seconds(),
		P50Ms:       percentile(lats, 0.50),
		P95Ms:       percentile(lats, 0.95),
		P99Ms:       percentile(lats, 0.99),
		MaxMs:       maxMs,
	}
}

func randomBatch(rng *rand.Rand, numGates, batch int) *client.WhatIfRequest {
	req := &client.WhatIfRequest{Candidates: make([]client.CandidateWire, batch)}
	for i := range req.Candidates {
		req.Candidates[i] = client.CandidateWire{
			Gate:  int64(rng.Intn(numGates)),
			Width: 1.0 + 3.0*rng.Float64(),
		}
	}
	return req
}

// Outcome classes for overload-mode samples.
const (
	kindServed = iota
	kindShed
	kindDeadline
	kindError
)

// classify maps one request outcome to its overload-report bucket:
// 429/503 are the admission controller shedding, 408/504 (or a local
// context timeout) are deadline expiry, everything else non-nil is an
// error.
func classify(err error) int {
	if err == nil {
		return kindServed
	}
	var ae *client.APIError
	switch {
	case errors.As(err, &ae) && (ae.Status == http.StatusTooManyRequests || ae.Status == http.StatusServiceUnavailable):
		return kindShed
	case errors.As(err, &ae) && (ae.Status == http.StatusRequestTimeout || ae.Status == http.StatusGatewayTimeout),
		errors.Is(err, context.DeadlineExceeded):
		return kindDeadline
	default:
		return kindError
	}
}

type overloadParams struct {
	url, design      string
	bins, batch      int
	ids              []string
	numGates         int
	saturation       float64
	conc, deadlineMs int
	duration         time.Duration
	seed             int64
}

// runOverload offers saturation × the daemon's query capacity and
// classifies every response: served, shed (429/503 with a Retry-After),
// deadline-expired (408/504), or error.
func runOverload(cl *client.Client, p overloadParams) *overloadReport {
	rep := &overloadReport{
		Tool: "statload", Mode: "overload",
		URL: p.url, Design: p.design, NumGates: p.numGates,
		Bins: p.bins, Batch: p.batch, Sessions: len(p.ids),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Saturation: p.saturation, DeadlineMs: p.deadlineMs,
	}

	// Saturation point: the query class's slot + queue capacity from
	// /healthz. Past it every extra in-flight request must be shed (or,
	// with admission off, pile up).
	capacity := 64 // daemon default when /healthz has no admission block
	if h, err := cl.Health(context.Background()); err == nil && h.Admission != nil {
		rep.AdmissionEnabled = h.Admission.Enabled
		if q, ok := h.Admission.Classes["query"]; ok {
			rep.QuerySlots = q.Slots
			capacity = q.Slots + q.Queue
		}
	}
	conc := p.conc
	if conc <= 0 {
		conc = int(p.saturation * float64(capacity))
	}
	rep.Concurrency = conc
	log.Printf("overload: %d workers (%.1fx of capacity %d), deadline %dms, admission=%v",
		conc, p.saturation, capacity, p.deadlineMs, rep.AdmissionEnabled)

	type sample struct {
		lat  time.Duration
		kind int // 0 served, 1 shed, 2 deadline, 3 error
	}
	perWorker := make([][]sample, conc)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(p.seed + int64(w)))
			id := p.ids[w%len(p.ids)]
			var samples []sample
			for {
				select {
				case <-stop:
					perWorker[w] = samples
					return
				default:
				}
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if p.deadlineMs > 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(p.deadlineMs)*time.Millisecond)
				}
				t0 := time.Now()
				_, err := cl.WhatIf(ctx, id, randomBatch(rng, p.numGates, p.batch))
				cancel()
				samples = append(samples, sample{lat: time.Since(t0), kind: classify(err)})
			}
		}(w)
	}
	time.Sleep(p.duration)
	close(stop)
	wg.Wait()
	rep.DurationS = time.Since(start).Seconds()

	var served, shed []float64
	for _, ws := range perWorker {
		for _, s := range ws {
			rep.Requests++
			ms := float64(s.lat) / float64(time.Millisecond)
			switch s.kind {
			case kindServed:
				rep.Served++
				served = append(served, ms)
			case kindShed:
				rep.Shed++
				shed = append(shed, ms)
			case kindDeadline:
				rep.DeadlineExpired++
			default:
				rep.Errors++
			}
		}
	}
	sort.Float64s(served)
	sort.Float64s(shed)
	rep.GoodputQPS = float64(rep.Served) / rep.DurationS
	if rep.Requests > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Requests)
	}
	rep.ServedP50Ms = percentile(served, 0.50)
	rep.ServedP95Ms = percentile(served, 0.95)
	rep.ServedP99Ms = percentile(served, 0.99)
	rep.ShedP50Ms = percentile(shed, 0.50)
	rep.ShedP99Ms = percentile(shed, 0.99)
	log.Printf("overload: %d served (%.1f qps goodput, p99 %.1fms), %d shed (%.0f%%, p99 %.1fms), %d deadline-expired, %d errors",
		rep.Served, rep.GoodputQPS, rep.ServedP99Ms,
		rep.Shed, 100*rep.ShedRate, rep.ShedP99Ms, rep.DeadlineExpired, rep.Errors)
	return rep
}
