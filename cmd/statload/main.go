// Command statload is the saturation benchmark for statsized: it
// drives concurrent WhatIfBatch traffic against a running daemon over
// a sweep of concurrency levels and reports QPS and latency quantiles
// per level as machine-readable JSON (the committed BENCH_PR7.json).
//
// Usage, against a local daemon:
//
//	statsized -addr 127.0.0.1:8790 &
//	statload -url http://127.0.0.1:8790 -design c1908 \
//	    -levels 16,64,256,1024 -duration 8s -out BENCH_PR7.json
//
// Each worker loops a batched what-if request against one of a small
// set of pooled sessions (distinct client ids), so the run exercises
// exactly the multiplexing path the service layer exists for: many
// concurrent clients over few live analyses.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

type candidate struct {
	Gate  int64   `json:"gate"`
	Width float64 `json:"width"`
}

type whatIfRequest struct {
	Candidates []candidate `json:"candidates"`
}

type openRequest struct {
	Design string `json:"design"`
	Client string `json:"client"`
	Bins   int    `json:"bins,omitempty"`
}

type openResponse struct {
	SessionID string `json:"session_id"`
	NumGates  int    `json:"num_gates"`
}

// levelReport is one concurrency level's outcome.
type levelReport struct {
	Concurrency int     `json:"concurrency"`
	DurationS   float64 `json:"duration_s"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	QPS         float64 `json:"qps"`
	CandPerSec  float64 `json:"candidates_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
}

// report is the full benchmark artifact.
type report struct {
	Tool       string        `json:"tool"`
	URL        string        `json:"url"`
	Design     string        `json:"design"`
	NumGates   int           `json:"num_gates"`
	Bins       int           `json:"bins"`
	Batch      int           `json:"batch"`
	Sessions   int           `json:"sessions"`
	GoMaxProcs int           `json:"go_max_procs"`
	Levels     []levelReport `json:"levels"`
}

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:8790", "daemon base URL")
		design   = flag.String("design", "c1908", "benchmark circuit to load")
		bins     = flag.Int("bins", 400, "SSTA grid bins for the pooled sessions")
		sessions = flag.Int("sessions", 8, "pooled sessions (distinct client ids) to multiplex over")
		batch    = flag.Int("batch", 8, "candidates per what-if request")
		levels   = flag.String("levels", "16,64,256,1024", "comma-separated concurrency sweep")
		duration = flag.Duration("duration", 8*time.Second, "wall-clock budget per level")
		seed     = flag.Int64("seed", 1, "candidate-generator seed")
		out      = flag.String("out", "", "write the JSON report here (default stdout)")
	)
	flag.Parse()
	log.SetPrefix("statload: ")
	log.SetFlags(0)

	sweep, err := parseLevels(*levels)
	if err != nil {
		log.Fatal(err)
	}
	maxConc := sweep[len(sweep)-1]

	// One shared transport sized for the largest level, so connections
	// are reused across the sweep instead of churning through TIME_WAIT.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        maxConc + 8,
		MaxIdleConnsPerHost: maxConc + 8,
	}}

	ids, numGates, err := openSessions(client, *url, *design, *bins, *sessions)
	if err != nil {
		log.Fatalf("opening sessions: %v", err)
	}
	log.Printf("pool ready: %d sessions on %s (%d gates)", len(ids), *design, numGates)

	rep := &report{
		Tool:       "statload",
		URL:        *url,
		Design:     *design,
		NumGates:   numGates,
		Bins:       *bins,
		Batch:      *batch,
		Sessions:   *sessions,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, conc := range sweep {
		lvl := runLevel(client, *url, ids, numGates, *batch, conc, *duration, *seed)
		rep.Levels = append(rep.Levels, lvl)
		log.Printf("concurrency %4d: %6.1f qps  p50 %8.2fms  p99 %9.2fms  errors %d",
			lvl.Concurrency, lvl.QPS, lvl.P50Ms, lvl.P99Ms, lvl.Errors)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}

// parseLevels parses the ascending concurrency sweep.
func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad concurrency level %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty level sweep")
	}
	sort.Ints(out)
	return out, nil
}

// bodyCap bounds every response read: the daemon's replies are small
// JSON documents, so a megabyte is an order of magnitude of headroom,
// and a misbehaving endpoint cannot balloon the load generator.
const bodyCap = 1 << 20

// readBounded drains at most bodyCap bytes of an HTTP response body.
func readBounded(resp *http.Response) ([]byte, error) {
	return io.ReadAll(io.LimitReader(resp.Body, bodyCap))
}

// openSessions creates the pooled sessions the workers multiplex over.
func openSessions(client *http.Client, base, design string, bins, n int) ([]string, int, error) {
	ids := make([]string, n)
	numGates := 0
	for i := range ids {
		body, err := json.Marshal(&openRequest{Design: design, Client: fmt.Sprintf("load-%d", i), Bins: bins})
		if err != nil {
			return nil, 0, err
		}
		resp, err := client.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, 0, err
		}
		out, err := readBounded(resp)
		resp.Body.Close()
		if err != nil {
			return nil, 0, err
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
			return nil, 0, fmt.Errorf("open session %d: status %d body %s", i, resp.StatusCode, out)
		}
		var or openResponse
		if err := json.Unmarshal(out, &or); err != nil {
			return nil, 0, err
		}
		ids[i] = or.SessionID
		numGates = or.NumGates
	}
	return ids, numGates, nil
}

// runLevel drives conc workers for the duration and aggregates their
// latency samples.
func runLevel(client *http.Client, base string, ids []string, numGates, batch, conc int, d time.Duration, seed int64) levelReport {
	type sample struct {
		lat time.Duration
		err bool
	}
	perWorker := make([][]sample, conc)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			url := base + "/v1/sessions/" + ids[w%len(ids)] + "/whatif"
			var samples []sample
			for {
				select {
				case <-stop:
					perWorker[w] = samples
					return
				default:
				}
				req := whatIfRequest{Candidates: make([]candidate, batch)}
				for i := range req.Candidates {
					req.Candidates[i] = candidate{
						Gate:  int64(rng.Intn(numGates)),
						Width: 1.0 + 3.0*rng.Float64(),
					}
				}
				body, _ := json.Marshal(&req)
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				bad := err != nil
				if err == nil {
					_, cerr := io.Copy(io.Discard, io.LimitReader(resp.Body, bodyCap))
					resp.Body.Close()
					bad = cerr != nil || resp.StatusCode != http.StatusOK
				}
				samples = append(samples, sample{lat: time.Since(t0), err: bad})
			}
		}(w)
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	var lats []float64
	requests, errors := 0, 0
	for _, ws := range perWorker {
		for _, s := range ws {
			requests++
			if s.err {
				errors++
				continue
			}
			lats = append(lats, float64(s.lat)/float64(time.Millisecond))
		}
	}
	sort.Float64s(lats)
	q := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	maxMs := 0.0
	if len(lats) > 0 {
		maxMs = lats[len(lats)-1]
	}
	ok := requests - errors
	return levelReport{
		Concurrency: conc,
		DurationS:   elapsed.Seconds(),
		Requests:    requests,
		Errors:      errors,
		QPS:         float64(ok) / elapsed.Seconds(),
		CandPerSec:  float64(ok*batch) / elapsed.Seconds(),
		P50Ms:       q(0.50),
		P95Ms:       q(0.95),
		P99Ms:       q(0.99),
		MaxMs:       maxMs,
	}
}
