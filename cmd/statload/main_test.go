package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"

	"statsize/client"
)

// TestParseLevels pins the sweep parser: levels come back sorted, junk
// and emptiness are rejected.
func TestParseLevels(t *testing.T) {
	got, err := parseLevels("256, 16,64")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[16 64 256]" {
		t.Fatalf("parseLevels = %v, want sorted [16 64 256]", got)
	}
	for _, bad := range []string{"", "16,zero", "0", "-4"} {
		if _, err := parseLevels(bad); err == nil {
			t.Errorf("parseLevels(%q) accepted junk", bad)
		}
	}
}

// TestClassify pins the overload-report buckets: sheds and deadline
// expiries must never be conflated — their latency split is the whole
// point of the benchmark.
func TestClassify(t *testing.T) {
	wrap := func(status int) error {
		return fmt.Errorf("call: %w", &client.APIError{Status: status, Code: "x"})
	}
	cases := []struct {
		err  error
		want int
	}{
		{nil, kindServed},
		{wrap(http.StatusTooManyRequests), kindShed},
		{wrap(http.StatusServiceUnavailable), kindShed},
		{wrap(http.StatusRequestTimeout), kindDeadline},
		{wrap(http.StatusGatewayTimeout), kindDeadline},
		{fmt.Errorf("do: %w", context.DeadlineExceeded), kindDeadline},
		{wrap(http.StatusNotFound), kindError},
		{errors.New("connection refused"), kindError},
	}
	for _, tc := range cases {
		if got := classify(tc.err); got != tc.want {
			t.Errorf("classify(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

// TestPercentile: quantiles read off the sorted samples without
// interpolation surprises on tiny or empty sets.
func TestPercentile(t *testing.T) {
	if got := percentile(nil, 0.99); got != 0 {
		t.Fatalf("percentile(nil) = %v", got)
	}
	samples := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(samples, 0.50); got != 5 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	if got := percentile(samples, 1.0); got != 10 {
		t.Fatalf("p100 = %v, want 10", got)
	}
}
