package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestReadBoundedCapsOversizedResponses pins the load generator's
// ingress bound: a misbehaving (or hostile) endpoint streaming an
// arbitrarily large body must cost at most bodyCap bytes of memory,
// not hang the sweep on an unbounded read.
func TestReadBoundedCapsOversizedResponses(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(bytes.Repeat([]byte("x"), 3*bodyCap))
	}))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	out, err := readBounded(resp)
	if err != nil {
		t.Fatalf("readBounded: %v", err)
	}
	if len(out) != bodyCap {
		t.Fatalf("readBounded returned %d bytes, want the %d-byte cap", len(out), bodyCap)
	}
}

// TestReadBoundedPassesSmallBodies: ordinary daemon replies come
// through intact.
func TestReadBoundedPassesSmallBodies(t *testing.T) {
	const payload = `{"session_id":"s1","num_gates":6}`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(payload))
	}))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	out, err := readBounded(resp)
	if err != nil {
		t.Fatalf("readBounded: %v", err)
	}
	if string(out) != payload {
		t.Fatalf("readBounded = %q, want %q", out, payload)
	}
}
