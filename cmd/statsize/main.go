// Command statsize sizes a single circuit with any registered optimizer
// and reports the timing before and after, optionally dumping a
// per-iteration trace and validating with Monte Carlo. The run drives
// an incremental timing session: width commits re-propagate only the
// perturbed region of the timing graph, and the session accounting
// (nodes recomputed versus a full SSTA pass) is reported at the end.
// Ctrl-C cancels the run and reports the partial trace sized so far.
//
// Usage:
//
//	statsize -circuit c432 -optimizer accelerated -iters 100
//	statsize -bench mydesign.bench -optimizer brute-force -iters 20 -trace
//	statsize -circuit c880 -optimizer deterministic -area-cap 0.25
//	statsize -circuit c432 -whatif 10
//	statsize -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"

	"statsize"
	"statsize/internal/report"
)

// legacyMethods maps the pre-registry -method shorthands to registry
// names so existing invocations keep working.
var legacyMethods = map[string]string{
	"det":   "deterministic",
	"brute": "brute-force",
	"accel": "accelerated",
}

func main() {
	circuit := flag.String("circuit", "", "benchmark name (c17, c432 .. c7552)")
	bench := flag.String("bench", "", "path to an ISCAS .bench netlist (alternative to -circuit)")
	optimizer := flag.String("optimizer", "accelerated", "registered optimizer name (see -list)")
	method := flag.String("method", "", "deprecated alias of -optimizer (det | brute | accel)")
	list := flag.Bool("list", false, "list registered optimizers and exit")
	iters := flag.Int("iters", 100, "maximum sizing iterations")
	bins := flag.Int("bins", 600, "SSTA grid bins")
	areaCap := flag.Float64("area-cap", 0, "stop after this relative area increase (0.25 = +25%)")
	percentile := flag.Float64("p", 0.99, "objective percentile")
	multi := flag.Int("multi", 1, "gates sized per iteration")
	heuristic := flag.Int("heuristic-levels", 0, "approximate mode: stop fronts after N levels")
	trace := flag.Bool("trace", false, "print a per-iteration trace table")
	whatif := flag.Int("whatif", 0, "before optimizing, rank the top N gates by exact what-if sensitivity")
	mcSamples := flag.Int("mc", 0, "validate the result with N Monte Carlo samples")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(statsize.Optimizers(), "\n"))
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	name := *optimizer
	if *method != "" {
		if mapped, ok := legacyMethods[*method]; ok {
			name = mapped
		} else {
			name = *method
		}
	}
	if err := run(ctx, *circuit, *bench, name, *iters, *bins, *areaCap, *percentile,
		*multi, *heuristic, *trace, *whatif, *mcSamples); err != nil {
		fmt.Fprintln(os.Stderr, "statsize:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, circuit, bench, optimizer string, iters, bins int,
	areaCap, percentile float64, multi, heuristic int, trace bool, whatif, mcSamples int) error {
	eng, err := statsize.New(
		statsize.WithBins(bins),
		statsize.WithObjective(statsize.Percentile(percentile)),
	)
	if err != nil {
		return err
	}

	var d *statsize.Design
	switch {
	case circuit != "" && bench != "":
		return fmt.Errorf("use either -circuit or -bench, not both")
	case circuit != "":
		d, err = eng.Benchmark(circuit)
	case bench != "":
		var f *os.File
		f, err = os.Open(bench)
		if err == nil {
			defer f.Close()
			d, err = eng.LoadBench(f, bench)
		}
	default:
		return fmt.Errorf("one of -circuit or -bench is required")
	}
	if err != nil {
		return err
	}

	nominal := eng.AnalyzeSTA(d).CircuitDelay()
	fmt.Printf("circuit: %v\n", d.NL)
	fmt.Printf("nominal delay (min size): %.4f ns\n", nominal)

	// One session serves the what-if ranking and the optimizer run: the
	// initial SSTA pass is paid once, everything after is incremental.
	s, err := eng.Open(ctx, d)
	if err != nil {
		return err
	}
	defer s.Close()

	if whatif > 0 {
		if err := rankWhatIf(ctx, s, whatif); err != nil {
			return err
		}
	}

	res, err := eng.OptimizeSession(ctx, s, optimizer,
		statsize.MaxIterations(iters),
		statsize.MaxAreaIncrease(areaCap),
		statsize.MultiSize(multi),
		statsize.HeuristicLevels(heuristic),
	)
	canceled := errors.Is(err, context.Canceled) && res != nil
	if canceled {
		fmt.Printf("canceled; reporting the partial run\n")
	} else if err != nil {
		return err
	}

	fmt.Printf("optimizer: %s, %d iterations in %v\n", res.Method, res.Iterations, res.Elapsed.Round(1000000))
	fmt.Printf("objective (p%g): %.4f -> %.4f ns  (%.2f%% improvement)\n",
		100*percentile, res.InitialObjective, res.FinalObjective, res.Improvement())
	fmt.Printf("total gate size: %.1f -> %.1f  (+%.1f%%)\n",
		res.InitialWidth, res.FinalWidth, res.AreaIncrease())
	if st, err := s.Stats(); err == nil && st.Resizes > 0 {
		fmt.Printf("incremental commits: %d resizes touching %.0f nodes each on average (full SSTA pass = %d nodes)\n",
			st.Resizes, float64(st.NodesRecomputed)/float64(st.Resizes), st.TotalNodes)
	}

	if trace && len(res.Records) > 0 {
		t := report.NewTable("per-iteration trace",
			"iter", "gate", "sensitivity", "objective (ns)", "area", "pruned/considered", "ms")
		for _, r := range res.Records {
			t.AddRowStrings(
				fmt.Sprint(r.Iter),
				fmt.Sprint(r.Gates),
				fmt.Sprintf("%.5g", r.Sensitivity),
				fmt.Sprintf("%.4f", r.Objective),
				fmt.Sprintf("%.1f", r.TotalWidth),
				fmt.Sprintf("%d/%d", r.CandidatesPruned, r.CandidatesConsidered),
				fmt.Sprintf("%.1f", float64(r.Elapsed.Microseconds())/1000),
			)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
	}

	if mcSamples > 0 && !canceled {
		mc, err := eng.MonteCarlo(ctx, res.Design, mcSamples, 1)
		if err != nil {
			return err
		}
		p := mc.Percentile(percentile)
		fmt.Printf("Monte Carlo p%g (%d samples): %.4f ns (bound error %+.2f%%)\n",
			percentile*100, mcSamples, p, 100*(res.FinalObjective-p)/p)
	}
	return nil
}

// rankWhatIf evaluates the exact objective sensitivity of one width
// step for every candidate gate — one WhatIfBatch call fans the whole
// sweep out across the engine's worker pool under a single session
// lock acquisition — and prints the top n.
func rankWhatIf(ctx context.Context, s *statsize.Session, n int) error {
	numGates, err := s.NumGates()
	if err != nil {
		return err
	}
	cands := make([]statsize.Candidate, 0, numGates)
	for g := 0; g < numGates; g++ {
		gid := statsize.GateID(g)
		w, err := s.Width(gid)
		if err != nil {
			return err
		}
		cands = append(cands, statsize.Candidate{Gate: gid, Width: w + 0.5})
	}
	results, err := s.WhatIfBatch(ctx, cands)
	if err != nil {
		return err
	}
	type row struct {
		gate statsize.GateID
		r    statsize.WhatIfResult
	}
	var rows []row
	for i, r := range results {
		if r.Sensitivity > 0 {
			rows = append(rows, row{cands[i].Gate, r})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].r.Sensitivity != rows[j].r.Sensitivity {
			return rows[i].r.Sensitivity > rows[j].r.Sensitivity
		}
		return rows[i].gate < rows[j].gate
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	t := report.NewTable("what-if ranking (uncommitted, exact)",
		"gate", "sensitivity", "objective if sized (ns)", "nodes touched")
	for _, r := range rows {
		t.AddRowStrings(
			fmt.Sprint(r.gate),
			fmt.Sprintf("%.5g", r.r.Sensitivity),
			fmt.Sprintf("%.4f", r.r.Objective),
			fmt.Sprint(r.r.NodesVisited),
		)
	}
	return t.Render(os.Stdout)
}
