// Command statsize sizes a single circuit with any of the three
// optimizers and reports the timing before and after, optionally dumping
// the optimized netlist and a per-iteration trace.
//
// Usage:
//
//	statsize -circuit c432 -method accel -iters 100
//	statsize -bench mydesign.bench -method brute -iters 20 -trace
//	statsize -circuit c880 -method det -area-cap 0.25
package main

import (
	"flag"
	"fmt"
	"os"

	"statsize"
	"statsize/internal/report"
)

func main() {
	circuit := flag.String("circuit", "", "benchmark name (c17, c432 .. c7552)")
	bench := flag.String("bench", "", "path to an ISCAS .bench netlist (alternative to -circuit)")
	method := flag.String("method", "accel", "optimizer: det | brute | accel")
	iters := flag.Int("iters", 100, "maximum sizing iterations")
	bins := flag.Int("bins", 600, "SSTA grid bins")
	areaCap := flag.Float64("area-cap", 0, "stop after this relative area increase (0.25 = +25%)")
	percentile := flag.Float64("p", 0.99, "objective percentile")
	multi := flag.Int("multi", 1, "gates sized per iteration")
	heuristic := flag.Int("heuristic-levels", 0, "approximate mode: stop fronts after N levels")
	trace := flag.Bool("trace", false, "print a per-iteration trace table")
	mcSamples := flag.Int("mc", 0, "validate the result with N Monte Carlo samples")
	flag.Parse()

	if err := run(*circuit, *bench, *method, *iters, *bins, *areaCap, *percentile,
		*multi, *heuristic, *trace, *mcSamples); err != nil {
		fmt.Fprintln(os.Stderr, "statsize:", err)
		os.Exit(1)
	}
}

func run(circuit, bench, method string, iters, bins int, areaCap, percentile float64,
	multi, heuristic int, trace bool, mcSamples int) error {
	var d *statsize.Design
	var err error
	switch {
	case circuit != "" && bench != "":
		return fmt.Errorf("use either -circuit or -bench, not both")
	case circuit != "":
		d, err = statsize.Benchmark(circuit)
	case bench != "":
		var f *os.File
		f, err = os.Open(bench)
		if err == nil {
			defer f.Close()
			d, err = statsize.LoadBench(f, bench)
		}
	default:
		return fmt.Errorf("one of -circuit or -bench is required")
	}
	if err != nil {
		return err
	}

	nominal := statsize.AnalyzeSTA(d).CircuitDelay()
	fmt.Printf("circuit: %v\n", d.NL)
	fmt.Printf("nominal delay (min size): %.4f ns\n", nominal)

	cfg := statsize.Config{
		MaxIterations:   iters,
		Bins:            bins,
		MaxAreaIncrease: areaCap,
		Objective:       statsize.Percentile(percentile),
		MultiSize:       multi,
		HeuristicLevels: heuristic,
	}
	var res *statsize.Result
	switch method {
	case "det":
		res, err = statsize.OptimizeDeterministic(d, cfg)
	case "brute":
		res, err = statsize.OptimizeBruteForce(d, cfg)
	case "accel":
		res, err = statsize.OptimizeAccelerated(d, cfg)
	default:
		return fmt.Errorf("unknown method %q (want det, brute or accel)", method)
	}
	if err != nil {
		return err
	}

	fmt.Printf("method: %s, %d iterations in %v\n", res.Method, res.Iterations, res.Elapsed.Round(1000000))
	fmt.Printf("objective (%v): %.4f -> %.4f ns  (%.2f%% improvement)\n",
		cfg.Objective, res.InitialObjective, res.FinalObjective, res.Improvement())
	fmt.Printf("total gate size: %.1f -> %.1f  (+%.1f%%)\n",
		res.InitialWidth, res.FinalWidth, res.AreaIncrease())

	if trace && len(res.Records) > 0 {
		t := report.NewTable("per-iteration trace",
			"iter", "gate", "sensitivity", "objective (ns)", "area", "pruned/considered", "ms")
		for _, r := range res.Records {
			t.AddRowStrings(
				fmt.Sprint(r.Iter),
				fmt.Sprint(r.Gates),
				fmt.Sprintf("%.5g", r.Sensitivity),
				fmt.Sprintf("%.4f", r.Objective),
				fmt.Sprintf("%.1f", r.TotalWidth),
				fmt.Sprintf("%d/%d", r.CandidatesPruned, r.CandidatesConsidered),
				fmt.Sprintf("%.1f", float64(r.Elapsed.Microseconds())/1000),
			)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
	}

	if mcSamples > 0 {
		mc, err := statsize.MonteCarlo(d, mcSamples, 1)
		if err != nil {
			return err
		}
		p := mc.Percentile(percentile)
		fmt.Printf("Monte Carlo p%g (%d samples): %.4f ns (bound error %+.2f%%)\n",
			percentile*100, mcSamples, p, 100*(res.FinalObjective-p)/p)
	}
	return nil
}
